// Links and routes.
//
// A Link models one direction of a bottleneck: fixed rate, propagation
// delay, and a droptail byte queue. All page-load connections share the two
// access-link directions (16 Mbit/s down, 1 Mbit/s up in the paper's DSL
// profile), which is what creates bandwidth contention between concurrent
// push streams (paper §5, w10). A Route is a Link plus an extra per-path
// propagation delay (server distance behind the access link).
#pragma once

#include <cstddef>
#include <functional>

#include "sim/simulator.h"
#include "util/rng.h"

namespace h2push::trace {
class TraceRecorder;
}

namespace h2push::sim {

struct LinkConfig {
  double rate_bps = 16e6;            ///< serialization rate, bits/second
  Time prop_delay = 0;               ///< one-way propagation on this link
  /// Droptail buffer. tc's default pfifo qdisc limits the queue in
  /// *packets* (1000), so a flood of 40-byte ACKs cannot build seconds of
  /// queueing delay the way a byte-capped buffer would; the byte cap is a
  /// safety backstop.
  std::size_t queue_packets = 1000;
  std::size_t queue_capacity = 1000 * 1500;  ///< bytes backstop
  double random_loss = 0.0;          ///< iid loss probability (Internet mode)
};

class Link {
 public:
  Link(Simulator& sim, LinkConfig config, util::Rng loss_rng);

  /// Enqueue a packet of `bytes` (incl. headers). `on_delivered` fires after
  /// queueing + serialization + propagation (+ extra_delay). Returns false
  /// if the packet was dropped (queue overflow or random loss).
  bool transmit(std::size_t bytes, Time extra_delay,
                std::function<void()> on_delivered);

  std::size_t queued_bytes() const noexcept { return queued_bytes_; }
  std::size_t queued_packets() const noexcept { return queued_packets_; }
  std::uint64_t delivered_packets() const noexcept { return delivered_; }
  std::uint64_t dropped_packets() const noexcept { return dropped_; }

  // Byte conservation (fuzz/invariants.h): every byte accepted onto the
  // link is eventually delivered; dropped bytes never enter the queue.
  // With the simulator drained: accepted == delivered and queued == 0.
  std::uint64_t accepted_bytes() const noexcept { return accepted_bytes_; }
  std::uint64_t delivered_bytes() const noexcept { return delivered_bytes_; }
  std::uint64_t dropped_bytes() const noexcept { return dropped_bytes_; }
  /// Cumulative serialization time: (now - busy_time) is the link's idle
  /// time, the resource Server Push tries to fill (paper §4.3).
  Time busy_time() const noexcept { return busy_time_; }
  const LinkConfig& config() const noexcept { return config_; }
  void set_rate(double bps) noexcept { config_.rate_bps = bps; }
  void set_random_loss(double p) noexcept { config_.random_loss = p; }

  /// Attach a trace recorder (queue-depth counters, drop instants).
  void set_trace(trace::TraceRecorder* recorder, std::uint32_t track) {
    trace_ = recorder;
    track_ = track;
  }

 private:
  Simulator& sim_;
  LinkConfig config_;
  util::Rng loss_rng_;
  Time busy_until_ = 0;
  Time busy_time_ = 0;
  std::size_t queued_bytes_ = 0;
  std::size_t queued_packets_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t accepted_bytes_ = 0;
  std::uint64_t delivered_bytes_ = 0;
  std::uint64_t dropped_bytes_ = 0;
  trace::TraceRecorder* trace_ = nullptr;
  std::uint32_t track_ = 0;
};

/// One direction of a path: the shared access link plus path-specific extra
/// propagation (distance to this origin's server).
struct Route {
  Link* link = nullptr;
  Time extra_prop = 0;

  bool transmit(std::size_t bytes, std::function<void()> on_delivered) const {
    return link->transmit(bytes, extra_prop, std::move(on_delivered));
  }
};

}  // namespace h2push::sim
