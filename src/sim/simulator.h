// Discrete-event simulation core.
//
// A single-threaded event loop with deterministic ordering: events fire in
// (time, insertion-sequence) order, so two events scheduled for the same
// instant run in the order they were scheduled. Cancellation is lazy (O(1)),
// which suits the TCP retransmission timers that are rescheduled on every
// ACK.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace h2push::sim {

using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `t` (clamped to now()).
  EventId schedule_at(Time t, std::function<void()> fn);

  /// Schedule `fn` `delay` after now().
  EventId schedule_in(Time delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event. Safe to call with kInvalidEvent, an id that
  /// already fired, an id that was never issued, or an id cancelled before
  /// (all no-ops): only live ids enter the cancelled set, so
  /// pending_events() stays exact.
  void cancel(EventId id);

  /// Run the next pending event; returns false when the queue is empty.
  bool step();

  /// Run until the queue is empty or `deadline` is reached.
  void run(Time deadline = INT64_MAX);

  std::size_t pending_events() const noexcept;
  std::uint64_t executed_events() const noexcept { return executed_; }

 private:
  struct Event {
    Time time;
    EventId id;
    std::function<void()> fn;
    bool operator>(const Event& other) const noexcept {
      if (time != other.time) return time > other.time;
      return id > other.id;  // FIFO among same-time events
    }
  };

  Time now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  // live_[id - 1]: event `id` is scheduled and neither fired nor cancelled.
  // Ids are issued sequentially, so a bit vector gives O(1) membership with
  // no per-event allocation (the schedule/fire path is the simulator's
  // hottest loop; a node-based set here costs several percent end to end).
  std::vector<bool> live_;
  std::unordered_set<EventId> cancelled_;  // subset of queued event ids
};

}  // namespace h2push::sim
