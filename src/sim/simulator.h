// Discrete-event simulation core.
//
// A single-threaded event loop with deterministic ordering: events fire in
// (time, insertion-sequence) order, so two events scheduled for the same
// instant run in the order they were scheduled. Cancellation is lazy (O(1)),
// which suits the TCP retransmission timers that are rescheduled on every
// ACK.
//
// The schedule/fire path is the simulator's hottest loop — a page-load sweep
// executes tens of millions of events — so it is allocation-free in steady
// state: callbacks live in fixed inline storage inside pooled event nodes
// (an intrusive free list recycles nodes as they fire), the priority queue
// holds 24-byte {time, seq, node*} entries, and cancellation is a flag on
// the node plus a counter instead of a node-based set. Stale EventIds
// (fired, cancelled, or recycled) are rejected via a per-node generation
// tag packed into the id, so cancel() keeps its "any id is safe" contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace h2push::sim {

using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

namespace detail {

/// Move-nothing callable container with inline storage sized for the event
/// lambdas the network stack schedules (they capture `this` plus a handful
/// of values). Callables larger than the buffer fall back to one heap
/// allocation; none of the hot paths need it. Constructed in place inside a
/// pooled EventNode and never relocated, so no move support is required.
class EventFn {
 public:
  static constexpr std::size_t kInlineSize = 64;

  EventFn() = default;
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  template <typename F>
  void emplace(F&& fn) {
    using Fn = std::decay_t<F>;
    reset();
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
      destroy_ = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      invoke_ = [](void* p) { (**static_cast<Fn**>(p))(); };
      destroy_ = [](void* p) { delete *static_cast<Fn**>(p); };
    }
  }

  void operator()() { invoke_(storage_); }

  void reset() {
    if (destroy_ != nullptr) {
      destroy_(storage_);
      destroy_ = nullptr;
      invoke_ = nullptr;
    }
  }

 private:
  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  void (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

}  // namespace detail

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `t` (clamped to now()).
  template <typename F>
  EventId schedule_at(Time t, F&& fn) {
    if (t < now_) t = now_;
    EventNode* node = allocate_node();
    node->fn.emplace(std::forward<F>(fn));
    node->queued = true;
    node->cancelled = false;
    queue_.push(QueueEntry{t, next_seq_++, node});
    return (static_cast<EventId>(node->generation) << 32) |
           static_cast<EventId>(node->slot + 1);
  }

  /// Schedule `fn` `delay` after now().
  template <typename F>
  EventId schedule_in(Time delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancel a pending event. Safe to call with kInvalidEvent, an id that
  /// already fired, an id that was never issued, or an id cancelled before
  /// (all no-ops): the generation tag in the id mismatches once a node is
  /// recycled, and the queued/cancelled flags reject the rest, so
  /// pending_events() stays exact.
  void cancel(EventId id);

  /// Run the next pending event; returns false when the queue is empty.
  bool step();

  /// Run until the queue is empty or `deadline` is reached.
  void run(Time deadline = INT64_MAX);

  std::size_t pending_events() const noexcept {
    return queue_.size() - cancelled_count_;
  }
  std::uint64_t executed_events() const noexcept { return executed_; }

  /// Nodes currently on the free list (observability for pool tests).
  std::size_t pooled_nodes() const noexcept;

  /// Total pool capacity ever allocated (observability for pool tests:
  /// allocated_nodes() - pooled_nodes() = live nodes).
  std::size_t allocated_nodes() const noexcept { return nodes_.size(); }

  /// Invariant-checker hook, called with the fire time of every event just
  /// before its callback runs. Empty (the default) costs one branch in
  /// step(); tests install a checker that asserts time monotonicity and
  /// cross-layer conservation laws (see fuzz/invariants.h).
  void set_fire_hook(std::function<void(Time)> hook) {
    fire_hook_ = std::move(hook);
  }

 private:
  struct EventNode {
    detail::EventFn fn;
    EventNode* next_free = nullptr;  // intrusive free list link
    std::uint32_t slot = 0;          // index into nodes_, stable for life
    std::uint32_t generation = 1;    // bumped on recycle; stale ids mismatch
    bool queued = false;             // in queue_ and not yet popped
    bool cancelled = false;
  };

  struct QueueEntry {
    Time time;
    std::uint64_t seq;  // FIFO among same-time events
    EventNode* node;
    bool operator>(const QueueEntry& other) const noexcept {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  EventNode* allocate_node();
  void release_node(EventNode* node);

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t cancelled_count_ = 0;  // cancelled entries still in queue_
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      queue_;
  // Pool backing storage: nodes are allocated in blocks and never freed
  // until the simulator dies; nodes_ maps slot → node for cancel().
  std::vector<std::unique_ptr<EventNode[]>> blocks_;
  std::vector<EventNode*> nodes_;
  EventNode* free_list_ = nullptr;
  std::function<void(Time)> fire_hook_;
};

}  // namespace h2push::sim
