#include "sim/link.h"

#include <algorithm>

#include "trace/trace.h"

namespace h2push::sim {

Link::Link(Simulator& sim, LinkConfig config, util::Rng loss_rng)
    : sim_(sim), config_(config), loss_rng_(loss_rng) {}

bool Link::transmit(std::size_t bytes, Time extra_delay,
                    std::function<void()> on_delivered) {
  if (queued_bytes_ + bytes > config_.queue_capacity ||
      queued_packets_ >= config_.queue_packets) {
    ++dropped_;
    dropped_bytes_ += bytes;
    if (trace_) {
      trace_->instant(track_, "sim", "drop.queue_full", {{"bytes", bytes}});
      ++trace_->summary().packets_dropped;
    }
    return false;
  }
  if (config_.random_loss > 0 && loss_rng_.bernoulli(config_.random_loss)) {
    ++dropped_;
    dropped_bytes_ += bytes;
    if (trace_) {
      trace_->instant(track_, "sim", "drop.random_loss", {{"bytes", bytes}});
      ++trace_->summary().packets_dropped;
    }
    return true;  // consumed by the network, silently lost
  }
  queued_bytes_ += bytes;
  accepted_bytes_ += bytes;
  ++queued_packets_;
  const double ser_seconds =
      static_cast<double>(bytes) * 8.0 / config_.rate_bps;
  const Time ser = from_seconds(ser_seconds);
  const Time start = std::max(sim_.now(), busy_until_);
  const Time depart = start + ser;
  busy_until_ = depart;
  busy_time_ += ser;
  if (trace_) {
    trace_->counter(track_, "sim", "queue_bytes",
                    static_cast<double>(queued_bytes_));
    trace_->counter(track_, "sim", "queue_packets",
                    static_cast<double>(queued_packets_));
  }
  // Bytes leave the queue when serialization completes...
  sim_.schedule_at(depart, [this, bytes] {
    queued_bytes_ -= bytes;
    --queued_packets_;
    if (trace_) {
      trace_->counter(track_, "sim", "queue_bytes",
                      static_cast<double>(queued_bytes_));
      trace_->counter(track_, "sim", "queue_packets",
                      static_cast<double>(queued_packets_));
    }
  });
  // ...and arrive after propagation.
  sim_.schedule_at(depart + config_.prop_delay + extra_delay,
                   [this, bytes, cb = std::move(on_delivered)] {
                     ++delivered_;
                     delivered_bytes_ += bytes;
                     if (trace_) ++trace_->summary().packets_delivered;
                     cb();
                   });
  return true;
}

}  // namespace h2push::sim
