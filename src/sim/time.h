// Simulated time: 64-bit signed nanoseconds since simulation start.
#pragma once

#include <cstdint>

namespace h2push::sim {

using Time = std::int64_t;  // nanoseconds

constexpr Time kNanosecond = 1;
constexpr Time kMicrosecond = 1000;
constexpr Time kMillisecond = 1000 * kMicrosecond;
constexpr Time kSecond = 1000 * kMillisecond;

constexpr Time from_ms(double ms) noexcept {
  return static_cast<Time>(ms * static_cast<double>(kMillisecond));
}
constexpr double to_ms(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}
constexpr Time from_seconds(double s) noexcept {
  return static_cast<Time>(s * static_cast<double>(kSecond));
}

}  // namespace h2push::sim
