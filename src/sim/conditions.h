// Network condition profiles.
//
// The paper evaluates under a fixed DSL profile shaped with tc (50 ms RTT,
// 16 Mbit/s down, 1 Mbit/s up) — our "testbed" conditions — and compares
// testbed variability against the live Internet (Fig. 2a). The "Internet"
// profile adds the variance sources the testbed removes: per-connection RTT
// jitter, bandwidth fluctuation, random loss, server think time, and dynamic
// third-party content (the latter is applied by the corpus layer).
#pragma once

#include "sim/time.h"
#include "util/rng.h"

namespace h2push::sim {

struct NetworkConditions {
  double down_bps = 16e6;
  double up_bps = 1e6;
  Time base_rtt = from_ms(50);
  /// tc's default pfifo qdisc holds 1000 packets (~1.5 MB at full MTU) —
  /// the paper's shaped DSL link effectively never drops page-sized bursts.
  std::size_t queue_capacity = 1000 * 1500;

  // --- variability sources (zero in the testbed profile) ---
  double rtt_jitter_sigma = 0.0;     ///< lognormal sigma on per-conn RTT
  double bw_jitter_sigma = 0.0;      ///< lognormal sigma on link rates
  double max_loss = 0.0;             ///< per-run loss drawn U[0, max_loss]
  Time server_think_mean = 0;        ///< exponential per-response delay
  double dynamic_content_prob = 0.0; ///< per-resource mutation chance

  /// Deterministic lab conditions (paper §4.1).
  static NetworkConditions testbed();

  /// Live-Internet-like conditions (paper Fig. 2a comparison).
  static NetworkConditions internet();
};

/// Concrete per-run draw from a NetworkConditions profile.
struct ConditionSample {
  double down_bps;
  double up_bps;
  double loss;
  Time base_rtt;          ///< run-level RTT before per-connection jitter
  double rtt_jitter_sigma;
  Time server_think_mean;

  /// RTT for one origin's connection (applies per-connection jitter).
  Time origin_rtt(util::Rng& rng) const;
};

ConditionSample sample_conditions(const NetworkConditions& cond,
                                  util::Rng& rng);

}  // namespace h2push::sim
