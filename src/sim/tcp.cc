#include "sim/tcp.h"

#include <algorithm>
#include <cassert>

#include "trace/trace.h"

namespace h2push::sim {
namespace {

const char* side_name(TcpConnection::Side side) {
  return side == TcpConnection::Side::kClient ? "client" : "server";
}

}  // namespace

TcpConnection::TcpConnection(Simulator& sim, TcpConfig config, Route up,
                             Route down, Callbacks callbacks)
    : sim_(sim), config_(config), callbacks_(std::move(callbacks)) {
  up_.data_route = up;
  up_.ack_route = down;
  down_.data_route = down;
  down_.ack_route = up;
  for (Half* h : {&up_, &down_}) {
    h->cwnd = config_.initial_cwnd;
    h->ssthresh = config_.initial_ssthresh;
    h->rto = config_.rto_initial;
  }
}

void TcpConnection::connect() {
  // Handshake packets travel the real routes so they experience queueing
  // and loss like everything else; a lost packet is retransmitted with
  // exponential backoff (RFC 6298-style initial timer).
  handshake_step_ = 0;
  handshake_total_steps_ = 2 + 2 * std::max(0, config_.tls_round_trips);
  handshake_rto_ = config_.rto_initial;
  send_handshake_packet();
}

void TcpConnection::send_handshake_packet() {
  const int step = handshake_step_;
  if (step >= handshake_total_steps_) return;
  const bool upstream = (step % 2) == 0;  // client flights on even steps
  std::size_t bytes = config_.header_bytes;
  if (step >= 2) {
    bytes += upstream ? config_.tls_client_flight : config_.tls_server_flight;
  }
  const Route& route = upstream ? up_.data_route : down_.data_route;
  route.transmit(bytes, [this, step] { advance_handshake(step); });
  sim_.cancel(handshake_timer_);
  handshake_timer_ = sim_.schedule_in(handshake_rto_, [this, step] {
    if (handshake_step_ != step) return;  // progressed meanwhile
    handshake_rto_ = std::min<Time>(handshake_rto_ * 2, from_seconds(20));
    send_handshake_packet();
  });
}

void TcpConnection::advance_handshake(int arrived_step) {
  if (arrived_step != handshake_step_) return;  // stale duplicate
  handshake_step_ = arrived_step + 1;
  sim_.cancel(handshake_timer_);
  handshake_timer_ = kInvalidEvent;
  const bool was_last_up = handshake_total_steps_ > 2 &&
                           (arrived_step % 2) == 0 &&
                           arrived_step == handshake_total_steps_ - 2;
  const bool was_last_down = arrived_step == handshake_total_steps_ - 1;
  if (was_last_up && callbacks_.on_accepted) {
    // Server-side handshake completes when it receives the final client
    // flight; the server may start writing (e.g. its SETTINGS frame).
    if (trace_) trace_->instant(trace_track_, "tcp", "accepted");
    callbacks_.on_accepted();
  }
  if (was_last_down) {
    connected_ = true;
    connect_end_time_ = sim_.now();
    if (trace_) trace_->instant(trace_track_, "tcp", "connected");
    if (handshake_total_steps_ == 2 && callbacks_.on_accepted) {
      callbacks_.on_accepted();  // no TLS: accept == connect
    }
    if (callbacks_.on_connected) callbacks_.on_connected();
    return;
  }
  send_handshake_packet();
}

void TcpConnection::send(Side side, std::span<const std::uint8_t> data) {
  Half& h = half(side);
  h.buffer.insert(h.buffer.end(), data.begin(), data.end());
  h.app_end += data.size();
  if (unsent_bytes(side) >= config_.write_watermark) h.writable_low = false;
  try_send(side);
}

std::size_t TcpConnection::unsent_bytes(Side side) const noexcept {
  const Half& h = half(side);
  return static_cast<std::size_t>(h.app_end - h.snd_nxt);
}

bool TcpConnection::writable(Side side) const noexcept {
  return unsent_bytes(side) < config_.write_watermark;
}

std::uint64_t TcpConnection::bytes_delivered_to(Side side) const noexcept {
  // Data delivered *to* the client travelled on the down half.
  return side == Side::kClient ? down_.delivered : up_.delivered;
}

std::uint64_t TcpConnection::retransmissions() const noexcept {
  return up_.retransmissions + down_.retransmissions;
}

double TcpConnection::cwnd_segments(Side sender) const noexcept {
  return half(sender).cwnd;
}

void TcpConnection::trace_congestion(Side sender) {
  // Counter tracks per sending side; the server→client (down) direction is
  // the one whose slow-start rounds shape push behaviour.
  const Half& h = half(sender);
  const std::string side(side_name(sender));
  trace_->counter(trace_track_, "tcp", "cwnd." + side, h.cwnd);
  if (h.ssthresh < 1e8) {
    trace_->counter(trace_track_, "tcp", "ssthresh." + side, h.ssthresh);
  }
}

void TcpConnection::try_send(Side sender) {
  if (!connected_ && sender == Side::kServer) {
    // The server may buffer before the handshake completes; data flows once
    // connected (on_accepted callers write after handshake by construction).
  }
  Half& h = half(sender);
  const auto mss = static_cast<std::uint64_t>(config_.mss);
  while (h.snd_nxt < h.app_end) {
    const std::uint64_t in_flight = h.snd_nxt - h.snd_una;
    const auto cwnd_bytes =
        static_cast<std::uint64_t>(h.cwnd * static_cast<double>(mss));
    if (in_flight + mss > cwnd_bytes && in_flight > 0) break;
    const std::size_t len = static_cast<std::size_t>(
        std::min<std::uint64_t>(mss, h.app_end - h.snd_nxt));
    transmit_segment(sender, h.snd_nxt, len, /*is_retransmit=*/false);
    h.snd_nxt += len;
  }
  maybe_signal_writable(sender);
}

void TcpConnection::transmit_segment(Side sender, std::uint64_t seq,
                                     std::size_t len, bool is_retransmit) {
  Half& h = half(sender);
  assert(seq >= h.base_seq);
  const std::size_t off = static_cast<std::size_t>(seq - h.base_seq);
  assert(off + len <= h.buffer.size());
  std::vector<std::uint8_t> payload(h.buffer.begin() + off,
                                    h.buffer.begin() + off + len);
  if (is_retransmit) {
    ++h.retransmissions;
    if (trace_) {
      trace_->instant(trace_track_, "tcp",
                      std::string("retransmit.") + side_name(sender),
                      {{"seq", seq}, {"len", len}});
      ++trace_->summary().retransmissions;
    }
  }
  // Karn: only sample RTT on fresh transmissions, one sample at a time.
  if (!is_retransmit && h.sample_sent_at < 0) {
    h.sample_seq = seq + len;
    h.sample_sent_at = sim_.now();
  } else if (is_retransmit && seq < h.sample_seq) {
    h.sample_sent_at = -1;  // invalidate sample spanning a retransmit
  }
  h.data_route.transmit(
      len + config_.header_bytes,
      [this, sender, seq, payload = std::move(payload)]() mutable {
        on_segment(sender, seq, std::move(payload));
      });
  arm_rto(sender);
}

void TcpConnection::on_segment(Side sender, std::uint64_t seq,
                               std::vector<std::uint8_t> payload) {
  Half& h = half(sender);
  const std::uint64_t end = seq + payload.size();
  if (end <= h.rcv_nxt) {
    send_ack(sender);  // duplicate of already-received data
    return;
  }
  if (seq > h.rcv_nxt) {
    h.ooo.emplace(seq, std::move(payload));  // hole: buffer out of order
    send_ack(sender);
    return;
  }
  // In-order (possibly partially duplicate) segment: deliver.
  std::vector<std::uint8_t> deliverable(
      payload.begin() + static_cast<std::ptrdiff_t>(h.rcv_nxt - seq),
      payload.end());
  h.rcv_nxt = end;
  // Drain any out-of-order segments that are now contiguous.
  while (!h.ooo.empty()) {
    auto it = h.ooo.begin();
    if (it->first > h.rcv_nxt) break;
    const std::uint64_t seg_end = it->first + it->second.size();
    if (seg_end > h.rcv_nxt) {
      deliverable.insert(
          deliverable.end(),
          it->second.begin() +
              static_cast<std::ptrdiff_t>(h.rcv_nxt - it->first),
          it->second.end());
      h.rcv_nxt = seg_end;
    }
    h.ooo.erase(it);
  }
  h.delivered += deliverable.size();
  send_ack(sender);
  if (callbacks_.on_receive) {
    callbacks_.on_receive(receiver_of(sender), deliverable);
  }
}

void TcpConnection::send_ack(Side data_sender) {
  Half& h = half(data_sender);
  const std::uint64_t ack = h.rcv_nxt;
  h.last_ack_sent = ack;
  h.ack_route.transmit(config_.header_bytes,
                       [this, data_sender, ack] { on_ack(data_sender, ack); });
}

void TcpConnection::on_ack(Side sender, std::uint64_t ack) {
  Half& h = half(sender);
  const auto mss_d = static_cast<double>(config_.mss);
  if (ack > h.snd_una) {
    const std::uint64_t newly = ack - h.snd_una;
    h.snd_una = ack;
    // RTT sample.
    if (h.sample_sent_at >= 0 && ack >= h.sample_seq) {
      const Time rtt = sim_.now() - h.sample_sent_at;
      h.sample_sent_at = -1;
      if (!h.rtt_seeded) {
        h.srtt = rtt;
        h.rttvar = rtt / 2;
        h.rtt_seeded = true;
      } else {
        const Time err = std::abs(h.srtt - rtt);
        h.rttvar = (3 * h.rttvar + err) / 4;
        h.srtt = (7 * h.srtt + rtt) / 8;
      }
      h.rto = std::max(config_.rto_min, h.srtt + 4 * h.rttvar);
      if (trace_) {
        trace_->counter(trace_track_, "tcp",
                        std::string("srtt_ms.") + side_name(sender),
                        to_ms(h.srtt));
      }
    }
    // Karn: a backed-off RTO is retained until a fresh RTT sample — resets
    // on mere ACK progress re-arm spurious timeouts when ACKs are merely
    // delayed (e.g. queued behind requests on the thin uplink).
    if (h.in_recovery) {
      if (ack >= h.recover) {
        h.in_recovery = false;
        h.dup_acks = 0;
        h.cwnd = h.ssthresh;
      } else {
        // NewReno partial ACK: retransmit the next hole immediately.
        const std::size_t len = static_cast<std::size_t>(std::min<
            std::uint64_t>(config_.mss, h.app_end - h.snd_una));
        if (len > 0)
          transmit_segment(sender, h.snd_una, len, /*is_retransmit=*/true);
      }
    } else {
      h.dup_acks = 0;
      const double acked_segments = static_cast<double>(newly) / mss_d;
      if (h.cwnd < h.ssthresh) {
        h.cwnd += acked_segments;  // slow start
      } else {
        h.cwnd += acked_segments / h.cwnd;  // congestion avoidance
      }
    }
    // Trim acknowledged bytes from the retransmission buffer.
    const std::size_t trim = static_cast<std::size_t>(h.snd_una - h.base_seq);
    if (trim > 64 * 1024 || trim == h.buffer.size()) {
      h.buffer.erase(h.buffer.begin(),
                     h.buffer.begin() + static_cast<std::ptrdiff_t>(trim));
      h.base_seq = h.snd_una;
    }
    if (h.snd_una == h.app_end) {
      sim_.cancel(h.rto_timer);
      h.rto_timer = kInvalidEvent;
    } else {
      arm_rto(sender);
    }
  } else if (ack == h.snd_una && h.snd_nxt > h.snd_una) {
    ++h.dup_acks;
    if (h.dup_acks == 3 && !h.in_recovery) {
      // Fast retransmit + NewReno recovery.
      const double flight =
          static_cast<double>(h.snd_nxt - h.snd_una) / mss_d;
      h.ssthresh = std::max(flight / 2.0, 2.0);
      h.cwnd = h.ssthresh + 3.0;
      h.in_recovery = true;
      h.recover = h.snd_nxt;
      if (trace_) {
        trace_->instant(trace_track_, "tcp",
                        std::string("fast_retransmit.") + side_name(sender),
                        {{"seq", h.snd_una}});
      }
      const std::size_t len = static_cast<std::size_t>(
          std::min<std::uint64_t>(config_.mss, h.app_end - h.snd_una));
      if (len > 0)
        transmit_segment(sender, h.snd_una, len, /*is_retransmit=*/true);
    } else if (h.dup_acks > 3 && h.in_recovery) {
      h.cwnd += 1.0;  // inflate during recovery
    }
  }
  if (trace_) trace_congestion(sender);
  try_send(sender);
}

void TcpConnection::arm_rto(Side sender) {
  Half& h = half(sender);
  sim_.cancel(h.rto_timer);
  h.rto_timer = sim_.schedule_in(h.rto, [this, sender] { on_rto(sender); });
}

void TcpConnection::on_rto(Side sender) {
  Half& h = half(sender);
  h.rto_timer = kInvalidEvent;
  if (h.snd_una >= h.app_end) return;  // nothing outstanding
  const double flight =
      static_cast<double>(h.snd_nxt - h.snd_una) / static_cast<double>(
          config_.mss);
  h.ssthresh = std::max(flight / 2.0, 2.0);
  h.cwnd = 1.0;
  h.dup_acks = 0;
  h.in_recovery = false;
  h.rto = std::min<Time>(h.rto * 2, from_seconds(60));  // Karn backoff
  // Go-back-N: multiple holes in one window would otherwise each cost one
  // (exponentially growing) RTO. The receiver buffers out-of-order data and
  // acks cumulatively, so redundant retransmissions resolve instantly.
  h.snd_nxt = h.snd_una;
  h.sample_sent_at = -1;  // Karn: no sampling across a timeout
  ++h.retransmissions;
  if (trace_) {
    trace_->instant(trace_track_, "tcp",
                    std::string("rto.") + side_name(sender),
                    {{"next_rto_ms", to_ms(h.rto)}});
    ++trace_->summary().retransmissions;
    trace_congestion(sender);
  }
  try_send(sender);
}

void TcpConnection::maybe_signal_writable(Side sender) {
  Half& h = half(sender);
  const bool low = unsent_bytes(sender) < config_.write_watermark;
  if (low && !h.writable_low) {
    h.writable_low = true;
    if (callbacks_.on_writable) callbacks_.on_writable(sender);
  } else if (!low) {
    h.writable_low = false;
  }
}

}  // namespace h2push::sim
