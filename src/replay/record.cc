#include "replay/record.h"

namespace h2push::replay {

void RecordStore::add(RecordedExchange exchange) {
  const auto key =
      std::make_pair(exchange.request.url.host, exchange.request.url.path);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    exchanges_[it->second] = std::move(exchange);  // latest recording wins
    return;
  }
  index_.emplace(key, exchanges_.size());
  exchanges_.push_back(std::move(exchange));
}

const RecordedExchange* RecordStore::find(const std::string& host,
                                          const std::string& path) const {
  const auto it = index_.find(std::make_pair(host, path));
  return it == index_.end() ? nullptr : &exchanges_[it->second];
}

std::vector<const RecordedExchange*> RecordStore::for_host(
    const std::string& host) const {
  std::vector<const RecordedExchange*> out;
  for (const auto& e : exchanges_) {
    if (e.request.url.host == host) out.push_back(&e);
  }
  return out;
}

}  // namespace h2push::replay
