#include "replay/origin.h"

namespace h2push::replay {

void OriginMap::add_host(const std::string& host, const IpAddress& ip) {
  host_to_ip_[host] = ip;
  servers_.try_emplace(ip);
}

void OriginMap::generate_certificates() {
  for (auto& [ip, cert] : servers_) cert.san_hosts.clear();
  for (const auto& [host, ip] : host_to_ip_) {
    servers_[ip].san_hosts.insert(host);
  }
}

void OriginMap::set_certificate(const IpAddress& ip, Certificate cert) {
  servers_[ip] = std::move(cert);
}

bool OriginMap::has_host(const std::string& host) const {
  return host_to_ip_.count(host) != 0;
}

IpAddress OriginMap::ip_of(const std::string& host) const {
  const auto it = host_to_ip_.find(host);
  return it == host_to_ip_.end() ? IpAddress{} : it->second;
}

bool OriginMap::can_coalesce(const std::string& connected_host,
                             const std::string& other_host) const {
  const auto a = host_to_ip_.find(connected_host);
  const auto b = host_to_ip_.find(other_host);
  if (a == host_to_ip_.end() || b == host_to_ip_.end()) return false;
  if (a->second != b->second) return false;  // DNS check: IPs must match
  const auto cert = servers_.find(a->second);
  if (cert == servers_.end()) return false;
  return cert->second.san_hosts.count(other_host) != 0;  // cert check
}

bool OriginMap::is_authoritative(const std::string& serving_host,
                                 const std::string& pushed_host) const {
  if (serving_host == pushed_host) return true;
  return can_coalesce(serving_host, pushed_host);
}

std::map<std::string, std::size_t> OriginMap::coalescing_groups(
    const std::string& primary_host) const {
  // Group key: (ip, certificate identity). With generated certificates the
  // relation is an equivalence (all hosts on an IP share the cert).
  std::map<IpAddress, std::size_t> ip_group;
  std::map<std::string, std::size_t> out;
  std::size_t next = 1;
  const IpAddress primary_ip = ip_of(primary_host);
  if (!primary_ip.empty()) ip_group[primary_ip] = 0;
  for (const auto& [host, ip] : host_to_ip_) {
    auto [it, inserted] = ip_group.try_emplace(ip, next);
    if (inserted) ++next;
    // A host whose cert does not include it cannot join the shared
    // connection; give it a singleton group.
    const auto cert = servers_.find(ip);
    const bool covered =
        cert != servers_.end() && cert->second.san_hosts.count(host) != 0;
    if (covered) {
      out[host] = it->second;
    } else {
      out[host] = next++;
    }
  }
  return out;
}

const Certificate* OriginMap::certificate_of(const IpAddress& ip) const {
  const auto it = servers_.find(ip);
  return it == servers_.end() ? nullptr : &it->second;
}

std::vector<IpAddress> OriginMap::all_ips() const {
  std::vector<IpAddress> out;
  out.reserve(servers_.size());
  for (const auto& [ip, cert] : servers_) out.push_back(ip);
  return out;
}

std::vector<std::string> OriginMap::hosts_on_ip(const IpAddress& ip) const {
  std::vector<std::string> out;
  for (const auto& [host, hip] : host_to_ip_) {
    if (hip == ip) out.push_back(host);
  }
  return out;
}

}  // namespace h2push::replay
