// Mahimahi-style record store.
//
// The paper records request/response pairs with an H2-capable mitmproxy and
// replays them from an h2o-FastCGI module that matches requests against the
// database (§4.1). Our RecordStore is that database: immutable request →
// response records including real body bytes (the browser model parses the
// HTML/CSS bodies it receives). Bodies are shared_ptr so the store can be
// replayed thousands of times without copying.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "h2/connection.h"
#include "http/message.h"

namespace h2push::replay {

struct RecordedExchange {
  http::Request request;
  http::Response response;
  h2::Body body;
  /// True if the real-world deployment pushed this resource (Fig. 2b
  /// replays "the same objects as in the Internet").
  bool recorded_pushed = false;
};

class RecordStore {
 public:
  void add(RecordedExchange exchange);

  /// Exact match on host + path (Mahimahi's matching, simplified: our
  /// corpus generates canonical URLs so no fuzzy fallback is needed).
  const RecordedExchange* find(const std::string& host,
                               const std::string& path) const;

  const std::vector<RecordedExchange>& all() const noexcept {
    return exchanges_;
  }
  std::size_t size() const noexcept { return exchanges_.size(); }

  /// All exchanges whose request host is `host`.
  std::vector<const RecordedExchange*> for_host(
      const std::string& host) const;

 private:
  std::vector<RecordedExchange> exchanges_;
  std::map<std::pair<std::string, std::string>, std::size_t> index_;
};

}  // namespace h2push::replay
