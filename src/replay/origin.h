// Origin → IP mapping, TLS certificates, and HTTP/2 connection coalescing.
//
// Mahimahi spawns one local server per recorded IP inside network
// namespaces; the paper extends it to generate, per server, a certificate
// whose Subject Alternative Names cover every domain hosted on that IP
// (§4.1). A browser may then coalesce traffic for origin B onto an existing
// connection to origin A iff (i) B appears in A's certificate SANs and
// (ii) DNS resolves B to the connected IP — the two checks Chromium
// performs. Push authority follows the same rule: a server may only push
// URLs whose host it is authoritative for (RFC 7540 §10.1).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace h2push::replay {

using IpAddress = std::string;  // synthetic dotted-quad identifiers

struct Certificate {
  std::set<std::string> san_hosts;
};

class OriginMap {
 public:
  /// Declare that `host` resolves to `ip`.
  void add_host(const std::string& host, const IpAddress& ip);

  /// Regenerate certificates the way the paper's modified Mahimahi does:
  /// each server's certificate lists every host that resolves to its IP.
  void generate_certificates();

  /// Override a server's certificate (used to model real-world certs that
  /// do NOT cover co-hosted third parties).
  void set_certificate(const IpAddress& ip, Certificate cert);

  bool has_host(const std::string& host) const;
  IpAddress ip_of(const std::string& host) const;  // empty if unknown

  /// Chromium's coalescing rule: can a connection to `connected_host`'s
  /// server also carry requests for `other_host`?
  bool can_coalesce(const std::string& connected_host,
                    const std::string& other_host) const;

  /// May the server for `serving_host` push a resource on `pushed_host`?
  bool is_authoritative(const std::string& serving_host,
                        const std::string& pushed_host) const;

  /// Partition all known hosts into coalescing groups; hosts in the same
  /// group share one connection. Returns group index per host; group 0 is
  /// the one containing `primary_host` (if known).
  std::map<std::string, std::size_t> coalescing_groups(
      const std::string& primary_host) const;

  std::vector<IpAddress> all_ips() const;
  std::vector<std::string> hosts_on_ip(const IpAddress& ip) const;
  std::size_t server_count() const { return servers_.size(); }

  /// The server certificate for `ip`, or null if unknown. Exposes the SAN
  /// set so the run-memoization cache can hash coalescing/push authority
  /// into its key (certificates can be overridden per IP, so they are not
  /// derivable from the host→IP map alone).
  const Certificate* certificate_of(const IpAddress& ip) const;

 private:
  std::map<std::string, IpAddress> host_to_ip_;
  std::map<IpAddress, Certificate> servers_;
};

}  // namespace h2push::replay
