// Cross-layer event tracing and metrics.
//
// A TraceRecorder collects typed, timestamped events from every layer of the
// stack — packet queues and TCP state in `sim/`, frames in `h2/`, scheduler
// decisions in `server/`, fetch/render lifecycles in `browser/` — onto named
// tracks (one per connection / link / browser). Timestamps are *simulated*
// time read through a clock callback, so a trace is exactly as deterministic
// as the run that produced it: same seed, same bytes out.
//
// The recorder is wired through the stack as a raw pointer that is null by
// default. Every instrumentation site is a single `if (trace_)` branch, so
// the disabled path costs one predictable-not-taken compare — the
// zero-overhead-when-disabled contract the benchmarks rely on.
//
// Exporters live in trace/chrome_trace.h: Chrome trace-event JSON (loadable
// in Perfetto / chrome://tracing) and a compact JSON per-run TraceSummary.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace h2push::trace {

/// Event phases, mirroring the Chrome trace-event phases they export to.
enum class Phase : std::uint8_t {
  kBegin,         // 'B' — duration slice opens on a track
  kEnd,           // 'E' — duration slice closes
  kInstant,       // 'i' — point event
  kCounter,       // 'C' — sampled numeric series
  kAsyncBegin,    // 'b' — async span opens (id-matched)
  kAsyncInstant,  // 'n' — point event inside an async span
  kAsyncEnd,      // 'e' — async span closes
};

/// Small typed argument value (int, double, or string).
struct ArgValue {
  enum class Kind : std::uint8_t { kInt, kDouble, kString } kind = Kind::kInt;
  std::int64_t i = 0;
  double d = 0;
  std::string s;

  ArgValue(int v) : i(v) {}  // NOLINT(google-explicit-constructor)
  ArgValue(long v) : i(v) {}                  // NOLINT
  ArgValue(long long v) : i(v) {}             // NOLINT
  ArgValue(unsigned v) : i(v) {}              // NOLINT
  ArgValue(unsigned long v) : i(static_cast<std::int64_t>(v)) {}       // NOLINT
  ArgValue(unsigned long long v) : i(static_cast<std::int64_t>(v)) {}  // NOLINT
  ArgValue(double v) : kind(Kind::kDouble), d(v) {}                    // NOLINT
  ArgValue(std::string v) : kind(Kind::kString), s(std::move(v)) {}    // NOLINT
  ArgValue(const char* v) : kind(Kind::kString), s(v) {}               // NOLINT
};

using Args = std::vector<std::pair<std::string, ArgValue>>;

struct Event {
  Phase phase = Phase::kInstant;
  sim::Time ts = 0;             ///< simulated time (nanoseconds)
  std::uint32_t track = 0;      ///< registered track id
  const char* category = "";    ///< static string: "sim", "h2", ...
  std::string name;
  double value = 0;             ///< counter phase only
  std::uint64_t async_id = 0;   ///< async phases only
  Args args;
};

/// Per-run roll-up of the counters the paper's analysis needs; filled live
/// by the instrumentation hooks and finalized by the testbed after the run.
struct TraceSummary {
  // Client-observed H2 DATA bytes (same accounting as PageLoadResult).
  std::uint64_t bytes_pushed = 0;
  std::uint64_t bytes_total = 0;
  /// Pushed DATA bytes that arrived before any consumer asked for the
  /// resource — the "won" bytes that fill server-side think/idle time.
  std::uint64_t bytes_pushed_before_request = 0;

  // Protocol-level counts.
  std::uint64_t push_promises = 0;
  std::uint64_t pushes_cancelled = 0;
  std::map<std::string, std::uint64_t> frames_sent;      // by frame type
  std::map<std::string, std::uint64_t> frames_received;  // by frame type

  // Transport-level counts.
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t retransmissions = 0;

  // Access-link utilization over the run (finalized post-run): idle time on
  // the downlink is exactly the resource Server Push tries to fill (§4.3).
  sim::Time run_span = 0;
  sim::Time downlink_busy = 0;
  sim::Time downlink_idle = 0;
  sim::Time uplink_busy = 0;
  sim::Time uplink_idle = 0;

  /// Free-form named counters for anything the typed fields don't cover.
  std::map<std::string, double> extra;
};

class TraceRecorder {
 public:
  using Clock = std::function<sim::Time()>;

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The testbed points this at the simulator clock before the run.
  void set_clock(Clock clock) { clock_ = std::move(clock); }
  sim::Time now() const { return clock_ ? clock_() : 0; }

  /// Register a named track (a Perfetto "thread"). Ids are sequential from
  /// 1, so registration order — which is deterministic — is display order.
  std::uint32_t register_track(std::string name) {
    track_names_.push_back(std::move(name));
    return static_cast<std::uint32_t>(track_names_.size());
  }
  const std::vector<std::string>& tracks() const { return track_names_; }

  // --- emission (stamped with the current simulated time) ---
  void begin(std::uint32_t track, const char* category, std::string name,
             Args args = {}) {
    push({Phase::kBegin, now(), track, category, std::move(name), 0, 0,
          std::move(args)});
  }
  void end(std::uint32_t track, const char* category, std::string name) {
    push({Phase::kEnd, now(), track, category, std::move(name), 0, 0, {}});
  }
  void instant(std::uint32_t track, const char* category, std::string name,
               Args args = {}) {
    push({Phase::kInstant, now(), track, category, std::move(name), 0, 0,
          std::move(args)});
  }
  void counter(std::uint32_t track, const char* category, std::string name,
               double value) {
    push({Phase::kCounter, now(), track, category, std::move(name), value, 0,
          {}});
  }
  void async_begin(std::uint32_t track, const char* category,
                   std::string name, std::uint64_t id, Args args = {}) {
    push({Phase::kAsyncBegin, now(), track, category, std::move(name), 0, id,
          std::move(args)});
  }
  void async_instant(std::uint32_t track, const char* category,
                     std::string name, std::uint64_t id, Args args = {}) {
    push({Phase::kAsyncInstant, now(), track, category, std::move(name), 0,
          id, std::move(args)});
  }
  void async_end(std::uint32_t track, const char* category, std::string name,
                 std::uint64_t id, Args args = {}) {
    push({Phase::kAsyncEnd, now(), track, category, std::move(name), 0, id,
          std::move(args)});
  }

  /// Explicit-timestamp variant for marks derived after the run (PLT,
  /// SpeedIndex, connectEnd). The exporter orders events by timestamp, so
  /// late emission keeps tracks monotonic.
  void instant_at(sim::Time ts, std::uint32_t track, const char* category,
                  std::string name, Args args = {}) {
    push({Phase::kInstant, ts, track, category, std::move(name), 0, 0,
          std::move(args)});
  }

  const std::vector<Event>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }

  TraceSummary& summary() { return summary_; }
  const TraceSummary& summary() const { return summary_; }

 private:
  void push(Event event) { events_.push_back(std::move(event)); }

  Clock clock_;
  std::vector<std::string> track_names_;
  std::vector<Event> events_;
  TraceSummary summary_;
};

}  // namespace h2push::trace
