#include "trace/chrome_trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <numeric>

namespace h2push::trace {
namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  char buf[64];
  // %.3f keeps microsecond values exact to the nanosecond and makes the
  // output reproducible across runs (no shortest-round-trip variance).
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

void append_args(std::string& out, const Args& args) {
  out += "{";
  bool first = true;
  for (const auto& [key, value] : args) {
    if (!first) out += ",";
    first = false;
    append_escaped(out, key);
    out += ":";
    switch (value.kind) {
      case ArgValue::Kind::kInt: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRId64, value.i);
        out += buf;
        break;
      }
      case ArgValue::Kind::kDouble:
        append_double(out, value.d);
        break;
      case ArgValue::Kind::kString:
        append_escaped(out, value.s);
        break;
    }
  }
  out += "}";
}

char phase_char(Phase phase) {
  switch (phase) {
    case Phase::kBegin: return 'B';
    case Phase::kEnd: return 'E';
    case Phase::kInstant: return 'i';
    case Phase::kCounter: return 'C';
    case Phase::kAsyncBegin: return 'b';
    case Phase::kAsyncInstant: return 'n';
    case Phase::kAsyncEnd: return 'e';
  }
  return 'i';
}

double to_us(sim::Time t) {
  return static_cast<double>(t) / static_cast<double>(sim::kMicrosecond);
}

}  // namespace

std::string to_chrome_trace_json(const TraceRecorder& recorder) {
  std::string out;
  out.reserve(256 + recorder.size() * 96);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";

  // Metadata: one process, one named thread per track, ordered by id.
  out += "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"h2push testbed\"}}";
  const auto& tracks = recorder.tracks();
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    const auto tid = i + 1;
    out += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":";
    append_escaped(out, tracks[i]);
    out += "}}";
    out += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" +
           std::to_string(tid) + "}}";
  }

  // Stable order by (ts, emission sequence): marks emitted after the run
  // with earlier timestamps sort back into place, keeping tracks monotonic.
  const auto& events = recorder.events();
  std::vector<std::size_t> order(events.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&events](std::size_t a, std::size_t b) {
                     return events[a].ts < events[b].ts;
                   });

  for (const std::size_t index : order) {
    const Event& ev = events[index];
    out += ",\n{\"ph\":\"";
    out += phase_char(ev.phase);
    out += "\",\"ts\":";
    append_double(out, to_us(ev.ts));
    out += ",\"pid\":1,\"tid\":" + std::to_string(ev.track);
    out += ",\"cat\":";
    append_escaped(out, ev.category);
    out += ",\"name\":";
    append_escaped(out, ev.name);
    switch (ev.phase) {
      case Phase::kCounter:
        out += ",\"args\":{\"value\":";
        append_double(out, ev.value);
        out += "}";
        break;
      case Phase::kAsyncBegin:
      case Phase::kAsyncInstant:
      case Phase::kAsyncEnd: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, ev.async_id);
        out += ",\"id\":\"";
        out += buf;
        out += "\"";
        if (!ev.args.empty()) {
          out += ",\"args\":";
          append_args(out, ev.args);
        }
        break;
      }
      case Phase::kInstant:
        out += ",\"s\":\"t\"";
        [[fallthrough]];
      default:
        if (!ev.args.empty()) {
          out += ",\"args\":";
          append_args(out, ev.args);
        }
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

namespace {

void append_counter_map(std::string& out, const char* key,
                        const std::map<std::string, std::uint64_t>& map) {
  out += "\"";
  out += key;
  out += "\":{";
  bool first = true;
  for (const auto& [name, count] : map) {
    if (!first) out += ",";
    first = false;
    append_escaped(out, name);
    out += ":" + std::to_string(count);
  }
  out += "}";
}

}  // namespace

std::string summary_to_json(const TraceSummary& s) {
  std::string out = "{";
  out += "\"bytes_pushed\":" + std::to_string(s.bytes_pushed);
  out += ",\"bytes_total\":" + std::to_string(s.bytes_total);
  out += ",\"bytes_pushed_before_request\":" +
         std::to_string(s.bytes_pushed_before_request);
  out += ",\"push_promises\":" + std::to_string(s.push_promises);
  out += ",\"pushes_cancelled\":" + std::to_string(s.pushes_cancelled);
  out += ",\"packets_delivered\":" + std::to_string(s.packets_delivered);
  out += ",\"packets_dropped\":" + std::to_string(s.packets_dropped);
  out += ",\"retransmissions\":" + std::to_string(s.retransmissions);
  out += ",\"run_span_ms\":";
  append_double(out, sim::to_ms(s.run_span));
  out += ",\"downlink_busy_ms\":";
  append_double(out, sim::to_ms(s.downlink_busy));
  out += ",\"downlink_idle_ms\":";
  append_double(out, sim::to_ms(s.downlink_idle));
  out += ",\"uplink_busy_ms\":";
  append_double(out, sim::to_ms(s.uplink_busy));
  out += ",\"uplink_idle_ms\":";
  append_double(out, sim::to_ms(s.uplink_idle));
  out += ",";
  append_counter_map(out, "frames_sent", s.frames_sent);
  out += ",";
  append_counter_map(out, "frames_received", s.frames_received);
  out += ",\"extra\":{";
  bool first = true;
  for (const auto& [name, value] : s.extra) {
    if (!first) out += ",";
    first = false;
    append_escaped(out, name);
    out += ":";
    append_double(out, value);
  }
  out += "}}";
  return out;
}

std::string summary_to_text(const TraceSummary& s) {
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "  pushed %.1f KB (%.1f KB before request) of %.1f KB total; "
                "%" PRIu64 " promises, %" PRIu64 " cancelled\n",
                static_cast<double>(s.bytes_pushed) / 1024.0,
                static_cast<double>(s.bytes_pushed_before_request) / 1024.0,
                static_cast<double>(s.bytes_total) / 1024.0, s.push_promises,
                s.pushes_cancelled);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  packets %" PRIu64 " delivered / %" PRIu64 " dropped; "
                "%" PRIu64 " retransmissions\n",
                s.packets_delivered, s.packets_dropped, s.retransmissions);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  downlink busy %.1f ms / idle %.1f ms over %.1f ms "
                "(uplink busy %.1f ms)\n",
                sim::to_ms(s.downlink_busy), sim::to_ms(s.downlink_idle),
                sim::to_ms(s.run_span), sim::to_ms(s.uplink_busy));
  out += buf;
  out += "  frames sent:";
  for (const auto& [name, count] : s.frames_sent) {
    out += " " + name + "=" + std::to_string(count);
  }
  out += "\n";
  return out;
}

}  // namespace h2push::trace
