// Exporters for TraceRecorder.
//
// `to_chrome_trace_json` emits the Chrome trace-event JSON object format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
// loadable in Perfetto (ui.perfetto.dev) and chrome://tracing. Tracks map to
// threads of a single process; metadata events name and order them. Events
// are ordered by (timestamp, emission sequence), so every track is
// monotonic and the output is byte-identical for identical runs.
//
// `summary_to_json` renders the per-run TraceSummary as a small stable JSON
// object for dashboards and regression diffs.
#pragma once

#include <string>

#include "trace/trace.h"

namespace h2push::trace {

std::string to_chrome_trace_json(const TraceRecorder& recorder);

std::string summary_to_json(const TraceSummary& summary);

/// Human-oriented one-screen rendering of the summary (examples print it).
std::string summary_to_text(const TraceSummary& summary);

}  // namespace h2push::trace
