// libFuzzer entrypoint: client byte stream → server h2::Connection via the
// adversarial peer harness (fuzz/harness.h).
//
// The RFC 7540 contract under arbitrary input: no crash, no hang, output
// always parseable, internal invariants (windows, stream states, scheduler)
// intact. The harness's own chunking/response randomness is derived from
// the input bytes so every trajectory is reproducible from the corpus file
// alone. Corpus: tests/corpus/connection (*.bin files).
#include <cstddef>
#include <cstdint>
#include <vector>

#include "fuzz/harness.h"
#include "fuzz/random.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace h2push;
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < size && i < 64; ++i) {
    seed = seed * 1099511628211ULL + data[i];
  }
  fuzz::Random r(seed);
  const auto result = fuzz::run_server_harness(
      r, std::vector<std::uint8_t>(data, data + size));
  if (result.hang) __builtin_trap();
  if (result.invariant_violation.has_value()) __builtin_trap();
  if (result.output_parse_error.has_value()) __builtin_trap();
  return 0;
}
