// libFuzzer entrypoint for the RFC 7541 Appendix B Huffman codec.
//
// Direction 1: arbitrary bytes through the decoder (accept or reject, no
// UB); anything decoded must re-encode to a string that decodes back.
// Direction 2: treat the input as plaintext, encode it, and require exact
// decode — encode∘decode is the identity on all byte strings.
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "h2/hpack_huffman.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace h2push;
  const std::span<const std::uint8_t> input(data, size);

  (void)h2::huffman_decode(input);

  const std::string plain(reinterpret_cast<const char*>(data), size);
  std::vector<std::uint8_t> encoded;
  h2::huffman_encode(plain, encoded);
  if (encoded.size() != h2::huffman_encoded_size(plain)) __builtin_trap();
  auto back = h2::huffman_decode(encoded);
  if (!back || *back != plain) __builtin_trap();
  return 0;
}
