// libFuzzer entrypoint: raw bytes → h2::FrameParser.
//
// Any input must terminate with frames or a clean typed error; round-trip
// every successfully parsed frame as a bonus oracle. Build with
// -DH2PUSH_FUZZ=ON (Clang only); corpus lives in tests/corpus/frame.
#include <cstddef>
#include <cstdint>
#include <span>

#include "fuzz/oracles.h"
#include "h2/frame.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace h2push;
  h2::FrameParser parser;
  auto frames = parser.feed(std::span<const std::uint8_t>(data, size));
  if (!frames) return 0;
  for (const auto& frame : *frames) {
    // Anything the parser accepts must survive serialize→parse→serialize
    // byte-identically.
    if (auto divergence = fuzz::frame_round_trip(frame)) {
      __builtin_trap();
    }
  }
  return 0;
}
