// libFuzzer entrypoint: raw bytes → h2::HpackDecoder.
//
// The first input byte picks the decoder's table-size cap so eviction and
// size-update paths get coverage; the rest is the header block. Decoding
// must accept or cleanly reject; accepted blocks must re-encode and decode
// to the same headers. Corpus: tests/corpus/hpack.
#include <cstddef>
#include <cstdint>
#include <vector>

#include "h2/hpack.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace h2push;
  if (size == 0) return 0;
  const std::size_t max_table = static_cast<std::size_t>(data[0]) * 64;
  h2::HpackDecoder decoder(max_table);
  decoder.set_max_table_size(max_table);
  auto block = decoder.decode(std::vector<std::uint8_t>(data + 1, data + size));
  if (!block) return 0;
  // Decoded headers must survive a fresh encode/decode cycle.
  h2::HpackEncoder encoder;
  h2::HpackDecoder verifier;
  auto again = verifier.decode(encoder.encode(*block));
  if (!again || !(*again == *block)) __builtin_trap();
  return 0;
}
